package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
	"teleport/internal/sim"
)

func localEngineFor(adj [][]int32, wts [][]int32, prog Program) (*Engine, *profile.Exec) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	g := FromAdjacency(p, adj, wts)
	eng := NewEngine(g, prog, 4)
	return eng, profile.NewExec(sim.NewThread("g"), p, nil)
}

// dijkstraRef computes reference shortest paths on the raw adjacency.
func dijkstraRef(adj [][]int32, wts [][]int32, src int) []int64 {
	nv := len(adj)
	dist := make([]int64, nv)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	done := make([]bool, nv)
	for {
		u, best := -1, Inf
		for v := 0; v < nv; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for k, v := range adj[u] {
			if nd := dist[u] + int64(wts[u][k]); nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

func randomAdj(r *rand.Rand, nv, maxDeg int) ([][]int32, [][]int32) {
	adj := make([][]int32, nv)
	wts := make([][]int32, nv)
	for u := 0; u < nv; u++ {
		deg := r.Intn(maxDeg + 1)
		for k := 0; k < deg; k++ {
			adj[u] = append(adj[u], int32(r.Intn(nv)))
			wts[u] = append(wts[u], int32(1+r.Intn(9)))
		}
	}
	return adj, wts
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := r.Intn(60) + 2
		adj, wts := randomAdj(r, nv, 5)
		eng, ex := localEngineFor(adj, wts, SSSP(0))
		eng.Run(ex)
		want := dijkstraRef(adj, wts, 0)
		env := ex.Env
		for v := 0; v < nv; v++ {
			if eng.Value(env, v) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReachabilityMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := r.Intn(60) + 2
		adj, wts := randomAdj(r, nv, 4)
		eng, ex := localEngineFor(adj, wts, Reachability(0))
		eng.Run(ex)
		// BFS reference.
		seen := make([]bool, nv)
		seen[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		env := ex.Env
		for v := 0; v < nv; v++ {
			reached := eng.Value(env, v) == 0
			if reached != seen[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCCMatchesUnionFind is the paper-agnostic invariant: label propagation
// must agree with union-find on undirected graphs.
func TestCCMatchesUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nv := r.Intn(60) + 2
		adj := make([][]int32, nv)
		parent := make([]int, nv)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for k := 0; k < nv; k++ {
			u, v := r.Intn(nv), r.Intn(nv)
			if u == v {
				continue
			}
			adj[u] = append(adj[u], int32(v))
			adj[v] = append(adj[v], int32(u))
			parent[find(u)] = find(v)
		}
		eng, ex := localEngineFor(adj, nil, CC())
		eng.Run(ex)
		env := ex.Env
		// Same component ⇔ same label.
		label := map[int]int64{}
		for v := 0; v < nv; v++ {
			root := find(v)
			got := eng.Value(env, v)
			if prev, ok := label[root]; ok && prev != got {
				return false
			}
			label[root] = got
		}
		return len(label) == countRoots(parent, find)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func countRoots(parent []int, find func(int) int) int {
	roots := map[int]bool{}
	for v := range parent {
		roots[find(v)] = true
	}
	return len(roots)
}

func TestPageRankConservesAndConverges(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	adj, wts := randomAdj(r, 50, 4)
	// Ensure every vertex has at least one out-edge so rank flows.
	for u := range adj {
		if len(adj[u]) == 0 {
			adj[u] = append(adj[u], int32((u+1)%50))
			wts[u] = append(wts[u], 1)
		}
	}
	eng, ex := localEngineFor(adj, wts, PageRank(10, 50))
	eng.Run(ex)
	if eng.Iters != 10 {
		t.Fatalf("PageRank ran %d iters, want 10", eng.Iters)
	}
	env := ex.Env
	var total int64
	for v := 0; v < 50; v++ {
		rank := eng.Value(env, v)
		if rank <= 0 {
			t.Fatalf("vertex %d rank %d, want positive", v, rank)
		}
		total += rank
	}
	// Total rank stays within a factor of the initial mass (damping leaks
	// a bounded amount with fixed-point truncation).
	if total < PRScale/4 || total > PRScale*4 {
		t.Fatalf("total rank %d drifted from %d", total, int64(PRScale))
	}
}

func TestGenerateDeterministicAndUndirected(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	g1, raw1 := Generate(p, GenConfig{NV: 200, AvgDegree: 4, Seed: 3, Undirected: true, KeepRaw: true})
	p2 := m.NewProcess()
	_, raw2 := Generate(p2, GenConfig{NV: 200, AvgDegree: 4, Seed: 3, Undirected: true, KeepRaw: true})
	for u := range raw1.Adj {
		if len(raw1.Adj[u]) != len(raw2.Adj[u]) {
			t.Fatal("generation not deterministic")
		}
	}
	// Undirected: edge counts symmetric (u→v implies v→u).
	counts := map[[2]int32]int{}
	for u, nbrs := range raw1.Adj {
		for _, v := range nbrs {
			counts[[2]int32{int32(u), v}]++
		}
	}
	for k, c := range counts {
		if counts[[2]int32{k[1], k[0]}] != c {
			t.Fatalf("edge %v not mirrored", k)
		}
	}
	if g1.NE <= g1.NV {
		t.Fatal("suspiciously few edges")
	}
	if g1.Bytes() <= 0 {
		t.Fatal("Bytes")
	}
}

func TestEngineProfilesPhases(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	g, _ := Generate(p, GenConfig{NV: 500, AvgDegree: 4, Seed: 1})
	eng := NewEngine(g, SSSP(0), 4)
	ex := profile.NewExec(sim.NewThread("g"), p, nil)
	eng.Run(ex)
	prof := ex.Profile()
	names := map[string]bool{}
	for _, o := range prof {
		names[o.Name] = true
	}
	for _, want := range Phases {
		if !names[want] {
			t.Fatalf("phase %s missing from profile %v", want, prof)
		}
	}
	if eng.Iters == 0 {
		t.Fatal("no iterations ran")
	}
}

// TestSSSPIdenticalAcrossPlatforms: answers match across Linux, base DDC,
// and TELEPORT (pushing finalize+scatter+gather), and times order
// local < teleport < base.
func TestSSSPIdenticalAcrossPlatforms(t *testing.T) {
	build := func(cfg ddc.Config) (*Engine, *profile.Exec, *ddc.Process) {
		m := ddc.MustMachine(cfg)
		p := m.NewProcess()
		g, _ := Generate(p, GenConfig{NV: 20000, AvgDegree: 6, Seed: 11})
		eng := NewEngine(g, SSSP(0), 4)
		return eng, profile.NewExec(sim.NewThread("g"), p, nil), p
	}
	sum := func(eng *Engine, ex *profile.Exec) (int64, sim.Time) {
		eng.Run(ex)
		var s int64
		env := ex.Env
		for v := 0; v < eng.G.NV; v++ {
			if d := eng.Value(env, v); d < Inf {
				s += d
			}
		}
		return s, ex.Total()
	}
	cache := int64(128 * mem.PageSize)

	engL, exL, _ := build(ddc.Linux())
	sumL, tL := sum(engL, exL)

	engB, exB, _ := build(ddc.BaseDDC(cache))
	sumB, tB := sum(engB, exB)

	engT, exT, pT := build(ddc.BaseDDC(cache))
	exT.RT = core.NewRuntime(pT, 1)
	exT.Push(OpFinalize, OpScatter, OpGather)
	sumT, tT := sum(engT, exT)

	if sumL != sumB || sumL != sumT {
		t.Fatalf("answers differ: %d %d %d", sumL, sumB, sumT)
	}
	if !(tL < tT && tT < tB) {
		t.Fatalf("time ordering broken: local %v, teleport %v, base %v", tL, tT, tB)
	}
}

// TestAllAlgorithmsPushedMatchUnpushed: pushing finalize/scatter/gather must
// not change any algorithm's result.
func TestAllAlgorithmsPushedMatchUnpushed(t *testing.T) {
	algos := []struct {
		name       string
		prog       func() Program
		undirected bool
	}{
		{"sssp", func() Program { return SSSP(0) }, false},
		{"re", func() Program { return Reachability(0) }, false},
		{"cc", func() Program { return CC() }, true},
		{"pagerank", func() Program { return PageRank(5, 2000) }, false},
	}
	for _, a := range algos {
		sums := make([]int64, 2)
		for variant := 0; variant < 2; variant++ {
			m := ddc.MustMachine(ddc.BaseDDC(96 * mem.PageSize))
			p := m.NewProcess()
			g, _ := Generate(p, GenConfig{NV: 2000, AvgDegree: 5, Seed: 17, Undirected: a.undirected})
			eng := NewEngine(g, a.prog(), 3)
			var rt *core.Runtime
			if variant == 1 {
				rt = core.NewRuntime(p, 1)
			}
			ex := profile.NewExec(sim.NewThread(a.name), p, rt)
			if variant == 1 {
				ex.Push(OpFinalize, OpScatter, OpGather)
			}
			eng.Run(ex)
			env := ex.Env
			var sum int64
			for v := 0; v < g.NV; v++ {
				if d := eng.Value(env, v); d < Inf {
					sum += d * int64(v%97+1)
				}
			}
			sums[variant] = sum
		}
		if sums[0] != sums[1] {
			t.Errorf("%s: pushed result differs (%d vs %d)", a.name, sums[0], sums[1])
		}
	}
}

func TestTinyGraphs(t *testing.T) {
	// Single vertex, no edges: SSSP terminates immediately with dist 0.
	eng, ex := localEngineFor([][]int32{nil}, [][]int32{nil}, SSSP(0))
	eng.Run(ex)
	if eng.Value(ex.Env, 0) != 0 {
		t.Fatal("lonely source must have distance 0")
	}
	// Two vertices, one edge.
	eng2, ex2 := localEngineFor([][]int32{{1}, nil}, [][]int32{{7}, nil}, SSSP(0))
	eng2.Run(ex2)
	if eng2.Value(ex2.Env, 1) != 7 {
		t.Fatalf("dist = %d, want 7", eng2.Value(ex2.Env, 1))
	}
	// Unreachable vertex stays at Inf.
	eng3, ex3 := localEngineFor([][]int32{nil, nil}, [][]int32{nil, nil}, SSSP(0))
	eng3.Run(ex3)
	if eng3.Value(ex3.Env, 1) != Inf {
		t.Fatal("unreachable vertex must stay at Inf")
	}
}

func TestEngineWorkerClamp(t *testing.T) {
	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	g, _ := Generate(p, GenConfig{NV: 50, AvgDegree: 3, Seed: 4})
	eng := NewEngine(g, SSSP(0), 0) // clamped to 1
	if eng.Workers != 1 {
		t.Fatalf("Workers = %d", eng.Workers)
	}
	ex := profile.NewExec(sim.NewThread("g"), p, nil)
	eng.Run(ex) // must not panic with a single partition
}
