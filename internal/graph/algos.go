package graph

// The paper's graph workloads (§7.1): SSSP, single-source reachability
// (RE), connected components (CC), and PageRank (§5.2 names gather as its
// bottleneck phase).

// SSSP returns the single-source shortest-path program from src.
func SSSP(src int) Program {
	return Program{
		Name:    "SSSP",
		Combine: CombineMin,
		Init: func(v int) (int64, bool) {
			if v == src {
				return 0, true
			}
			return Inf, false
		},
		Scatter: func(val, w, _ int64) int64 { return val + w },
		Apply: func(old, msg int64) (int64, bool) {
			if msg < old {
				return msg, true
			}
			return old, false
		},
	}
}

// Reachability returns the single-source reachability program (RE): a
// vertex's value converges to 0 if reachable from src, Inf otherwise.
func Reachability(src int) Program {
	return Program{
		Name:    "RE",
		Combine: CombineMin,
		Init: func(v int) (int64, bool) {
			if v == src {
				return 0, true
			}
			return Inf, false
		},
		Scatter: func(val, _, _ int64) int64 { return val },
		Apply: func(old, msg int64) (int64, bool) {
			if msg < old {
				return msg, true
			}
			return old, false
		},
	}
}

// CC returns the connected-components program (label propagation: every
// vertex converges to the minimum vertex id of its component). The graph
// must be undirected.
func CC() Program {
	return Program{
		Name:    "CC",
		Combine: CombineMin,
		Init:    func(v int) (int64, bool) { return int64(v), true },
		Scatter: func(val, _, _ int64) int64 { return val },
		Apply: func(old, msg int64) (int64, bool) {
			if msg < old {
				return msg, true
			}
			return old, false
		},
	}
}

// PRScale is the fixed-point scale for PageRank values.
const PRScale = 1 << 20

// PageRank returns a fixed-iteration PageRank program over fixed-point
// values: each vertex scatters rank/out-degree, and apply mixes with the
// 0.15/0.85 damping rule.
func PageRank(iters, nv int) Program {
	base := int64(PRScale / nv)
	if base == 0 {
		base = 1
	}
	return Program{
		Name:     "PageRank",
		Combine:  CombineSum,
		MaxIters: iters,
		Init:     func(v int) (int64, bool) { return base, true },
		Scatter: func(val, _, deg int64) int64 {
			if deg <= 0 {
				deg = 1
			}
			return val / deg
		},
		Apply: func(_, msg int64) (int64, bool) {
			return int64(float64(base)*0.15 + 0.85*float64(msg)), true
		},
	}
}
