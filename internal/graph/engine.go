package graph

import (
	"teleport/internal/ddc"
	"teleport/internal/mem"
	"teleport/internal/profile"
)

// Phase names for pushdown sets and Figure 10 profiles.
const (
	OpFinalize = "Finalize"
	OpGather   = "Gather"
	OpApply    = "Apply"
	OpScatter  = "Scatter"
)

// Phases lists the engine's phases in execution order.
var Phases = []string{OpFinalize, OpGather, OpApply, OpScatter}

// Combine selects the message combiner.
type Combine int

// Combiners.
const (
	CombineMin Combine = iota
	CombineSum
)

// Inf is the "no value" sentinel for min-combined algorithms.
const Inf = int64(1) << 60

// Per-element CPU costs. PowerGraph executes a heavyweight vertex-program
// machinery per edge (functors, locks, scheduling bits), so its per-edge
// instruction count dwarfs a bare CSR traversal; these values reflect that,
// and keep the graph workloads' DDC slowdown at the paper's ~5x rather than
// the ~100x a bare loop would show.
const (
	opsEdge     = 60
	opsVertex   = 30
	opsFinalize = 45
)

// Program defines a vertex program in the gather-apply-scatter model.
type Program struct {
	// Name identifies the algorithm.
	Name string
	// Combine merges messages destined for the same vertex.
	Combine Combine
	// Init returns a vertex's initial value and whether it starts active.
	Init func(v int) (val int64, active bool)
	// Scatter produces the message u sends along an edge of weight w given
	// its current value and out-degree.
	Scatter func(val, w, deg int64) int64
	// Apply merges the combined message into the vertex value, returning
	// the new value and whether the vertex activates for the next round.
	Apply func(old, msg int64) (int64, bool)
	// MaxIters bounds the iteration count (0 = run to convergence).
	MaxIters int
}

// Engine executes a Program over a Graph. All engine state (vertex values,
// message buffer, active lists) lives in disaggregated memory.
type Engine struct {
	G    *Graph
	Prog Program

	// Workers is the partition count used by Finalize (§5.2: "partition and
	// shuffle input graph among the worker threads").
	Workers int

	vals   mem.Addr // int64 per vertex
	msgs   mem.Addr // int64 per vertex (combined incoming messages)
	hasMsg mem.Addr // one byte per vertex
	active mem.Addr // uint32 list of active vertices
	nAct   int

	// Finalize output: vertices regrouped by worker, plus a per-worker
	// shuffled copy of the adjacency so each worker scans its own edges.
	partVerts mem.Addr // uint32 per vertex, grouped by worker
	partOffs  []int64  // worker boundaries in partVerts (host metadata)
	partEdges mem.Addr // the shuffled edge copy (dst+weight per edge)
	Iters     int
}

// NewEngine allocates engine state for g.
func NewEngine(g *Graph, prog Program, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	nv := int64(g.NV)
	return &Engine{
		G: g, Prog: prog, Workers: workers,
		vals:      g.P.Space.AllocPages(nv*8, "eng.vals"),
		msgs:      g.P.Space.AllocPages(nv*8, "eng.msgs"),
		hasMsg:    g.P.Space.AllocPages(nv, "eng.hasmsg"),
		active:    g.P.Space.AllocPages(nv*4+4, "eng.active"),
		partVerts: g.P.Space.AllocPages(nv*4+4, "eng.partverts"),
	}
}

// Value returns vertex v's final value.
func (e *Engine) Value(env *ddc.Env, v int) int64 {
	return env.ReadI64(e.vals + mem.Addr(v*8))
}

// Run executes finalize and then iterates gather/apply/scatter until no
// vertex is active (or MaxIters), recording each phase in ex.
func (e *Engine) Run(ex *profile.Exec) {
	ex.Run(OpFinalize, func(env *ddc.Env) { e.finalize(env) })
	e.Iters = 0
	for e.nAct > 0 {
		if e.Prog.MaxIters > 0 && e.Iters >= e.Prog.MaxIters {
			break
		}
		e.Iters++
		ex.Run(OpScatter, func(env *ddc.Env) { e.scatter(env) })
		ex.Run(OpGather, func(env *ddc.Env) { e.gather(env) })
		ex.Run(OpApply, func(env *ddc.Env) { e.apply(env) })
	}
}

// finalize initialises vertex state and partitions/shuffles the vertices
// among workers — a full pass over vertex and edge state.
func (e *Engine) finalize(env *ddc.Env) {
	g := e.G
	// Initial values and the initial active frontier.
	e.nAct = 0
	for v := 0; v < g.NV; v++ {
		env.Compute(opsVertex)
		val, act := e.Prog.Init(v)
		env.WriteI64(e.vals+mem.Addr(v*8), val)
		env.WriteU8(e.hasMsg+mem.Addr(v), 0)
		if act {
			env.WriteU32(e.active+mem.Addr(e.nAct*4), uint32(v))
			e.nAct++
		}
	}
	// Partition: hash vertices to workers and group them (the shuffle).
	counts := make([]int64, e.Workers)
	for v := 0; v < g.NV; v++ {
		env.Compute(opsFinalize)
		counts[v%e.Workers]++
	}
	e.partOffs = make([]int64, e.Workers+1)
	for w := 0; w < e.Workers; w++ {
		e.partOffs[w+1] = e.partOffs[w] + counts[w]
	}
	cursor := append([]int64(nil), e.partOffs[:e.Workers]...)
	for v := 0; v < g.NV; v++ {
		w := v % e.Workers
		env.Compute(opsFinalize)
		env.WriteU32(e.partVerts+mem.Addr(cursor[w]*4), uint32(v))
		cursor[w]++
	}
	// Shuffle the edge state: every worker walks its vertices' adjacency
	// (random CSR access once vertices are regrouped) and materialises its
	// own copy of the edges — the data movement that dominates finalize in
	// a DDC (Figure 10: 249 GB of remote access).
	if e.partEdges == 0 {
		e.partEdges = g.P.Space.AllocPages(int64(maxInt(g.NE, 1))*8, "eng.partedges")
	}
	out := int64(0)
	for w := 0; w < e.Workers; w++ {
		for i := e.partOffs[w]; i < e.partOffs[w+1]; i++ {
			v := int(env.ReadU32(e.partVerts + mem.Addr(i*4)))
			lo, hi := g.EdgeRange(env, v)
			for edge := lo; edge < hi; edge++ {
				env.Compute(opsFinalize)
				dst, wgt := g.EdgeAt(env, edge)
				// Batched adjacent pair write (per-element equivalent to the
				// two WriteU32 calls it replaces).
				pair := [2]uint32{uint32(dst), uint32(wgt)}
				env.WriteU32s(e.partEdges+mem.Addr(out*8), pair[:])
				out++
			}
		}
	}
}

// scatter sends messages from the active frontier along out-edges,
// combining into the per-vertex message slots (random remote writes).
func (e *Engine) scatter(env *ddc.Env) {
	g := e.G
	for i := 0; i < e.nAct; i++ {
		u := int(env.ReadU32(e.active + mem.Addr(i*4)))
		val := env.ReadI64(e.vals + mem.Addr(u*8))
		lo, hi := g.EdgeRange(env, u)
		deg := hi - lo
		for edge := lo; edge < hi; edge++ {
			env.Compute(opsEdge)
			dst, w := g.EdgeAt(env, edge)
			msg := e.Prog.Scatter(val, w, deg)
			slot := e.msgs + mem.Addr(dst*8)
			if env.ReadU8(e.hasMsg+mem.Addr(dst)) == 0 {
				env.WriteU8(e.hasMsg+mem.Addr(dst), 1)
				env.WriteI64(slot, msg)
				continue
			}
			old := env.ReadI64(slot)
			if e.Prog.Combine == CombineMin {
				if msg < old {
					env.WriteI64(slot, msg)
				}
			} else {
				env.WriteI64(slot, old+msg)
			}
		}
	}
}

// gather sweeps the message buffer and collects the vertices that received
// messages into the next frontier (sequential scan of vertex state).
func (e *Engine) gather(env *ddc.Env) {
	e.nAct = 0
	for v := 0; v < e.G.NV; v++ {
		env.Compute(opsVertex)
		if env.ReadU8(e.hasMsg+mem.Addr(v)) != 0 {
			env.WriteU32(e.active+mem.Addr(e.nAct*4), uint32(v))
			e.nAct++
		}
	}
}

// apply merges combed messages into vertex values and keeps only the
// vertices the program reactivates.
func (e *Engine) apply(env *ddc.Env) {
	kept := 0
	for i := 0; i < e.nAct; i++ {
		v := int(env.ReadU32(e.active + mem.Addr(i*4)))
		env.Compute(opsVertex)
		msg := env.ReadI64(e.msgs + mem.Addr(v*8))
		env.WriteU8(e.hasMsg+mem.Addr(v), 0)
		old := env.ReadI64(e.vals + mem.Addr(v*8))
		nv, act := e.Prog.Apply(old, msg)
		if nv != old {
			env.WriteI64(e.vals+mem.Addr(v*8), nv)
		}
		if act {
			env.WriteU32(e.active+mem.Addr(kept*4), uint32(v))
			kept++
		}
	}
	e.nAct = kept
}
