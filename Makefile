GO ?= go

.PHONY: build test race lint fuzz-smoke chaos-soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt + vet + the repo's own determinism analyzers (cmd/ddclint) +
# the analyzers' fixture suites.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/ddclint ./...
	$(GO) test ./internal/analysis/...

# Chaos soak: every fault profile × 16 seeds on the chaos workloads,
# checking answers stay bit-identical to fault-free and same-seed reruns
# are bit-identical. Per-profile fault-report summaries land in
# SOAK_ARTIFACTS (default ./soak-artifacts) for CI upload.
SOAK_ARTIFACTS ?= soak-artifacts
chaos-soak:
	CHAOS_SOAK=1 CHAOS_SOAK_ARTIFACTS=$(SOAK_ARTIFACTS) \
		$(GO) test ./internal/bench -run TestChaosSoak -v -timeout 30m

# Short fuzz pass over the §6 resident-page-list codec; CI runs this on
# every push, longer runs are manual (go test -fuzz=Fuzz ./internal/netmodel).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzResidentRoundTrip -fuzztime=10s ./internal/netmodel
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalResident -fuzztime=10s ./internal/netmodel
