GO ?= go

.PHONY: build test race lint fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt + vet + the repo's own determinism analyzers (cmd/ddclint) +
# the analyzers' fixture suites.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/ddclint ./...
	$(GO) test ./internal/analysis/...

# Short fuzz pass over the §6 resident-page-list codec; CI runs this on
# every push, longer runs are manual (go test -fuzz=Fuzz ./internal/netmodel).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzResidentRoundTrip -fuzztime=10s ./internal/netmodel
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalResident -fuzztime=10s ./internal/netmodel
