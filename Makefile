GO ?= go

.PHONY: build test race lint fuzz-smoke chaos-soak bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt + vet + the repo's own determinism analyzers (cmd/ddclint) +
# the analyzers' fixture suites. ./... includes cmd/... and
# internal/analysis/... themselves, so the linter is self-hosting: the
# analyzers and their driver must pass their own checks.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/ddclint ./...
	$(GO) test ./internal/analysis/...

# Chaos soak: every fault profile × 16 seeds on the chaos workloads,
# checking answers stay bit-identical to fault-free and same-seed reruns
# are bit-identical. Per-profile fault-report summaries land in
# SOAK_ARTIFACTS (default ./soak-artifacts) for CI upload.
SOAK_ARTIFACTS ?= soak-artifacts
chaos-soak:
	CHAOS_SOAK=1 CHAOS_SOAK_ARTIFACTS=$(SOAK_ARTIFACTS) \
		$(GO) test ./internal/bench -run TestChaosSoak -v -timeout 30m

# Host benchmark: regenerate the figure suite timed and write the host
# performance report (per-figure wall-clock ns + heap allocations).
# BENCH_10.json is the tracked baseline, produced by this target at the
# reduced scale below; CI's bench-smoke job reruns it and fails on a >25%
# wall-clock regression. Refresh the baseline (make bench, commit the
# file) whenever the suite's host cost legitimately changes.
BENCH_OUT ?= BENCH_10.json
BENCH_BASELINE ?=
BENCH_FLAGS ?= -scale 0.5 -graph-nv 15000 -words 60000 -quiet
bench:
	$(GO) run ./cmd/teleport-bench $(BENCH_FLAGS) -bench-out $(BENCH_OUT) \
		$(if $(BENCH_BASELINE),-bench-baseline $(BENCH_BASELINE))

# Short fuzz pass over the §6 resident-page-list codec; CI runs this on
# every push, longer runs are manual (go test -fuzz=Fuzz ./internal/netmodel).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzResidentRoundTrip -fuzztime=10s ./internal/netmodel
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalResident -fuzztime=10s ./internal/netmodel
