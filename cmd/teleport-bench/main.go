// Command teleport-bench regenerates the paper's evaluation figures and
// tables (Figures 1a–22) on the simulated disaggregated data center.
//
// Usage:
//
//	teleport-bench                      # regenerate every figure
//	teleport-bench -fig 13              # one figure
//	teleport-bench -fig 6,7,20          # several
//	teleport-bench -scale 4 -seed 7     # bigger workloads
//	teleport-bench -parallel 1          # force sequential data points
//	teleport-bench -bench-out BENCH_10.json            # host benchmark report
//	teleport-bench -bench-out b.json -bench-baseline BENCH_10.json
//	teleport-bench -workload Q6 -percentiles           # forensic drill-down
//	teleport-bench -workload Q6 -chaos-profile chaos -profile-out q6.folded -incident-out q6.jsonl
//
// Output is the same rows/series the paper reports; absolute values reflect
// the scaled-down datasets (see DESIGN.md's scale rule and EXPERIMENTS.md
// for the committed paper-vs-measured record). Figure data points fan out
// across host cores by default; the virtual-time results are bit-identical
// at every -parallel setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"teleport/internal/bench"
	"teleport/internal/obs"
)

func main() {
	defaults := bench.Defaults()
	var (
		fig        = flag.String("fig", "all", "figure id(s), comma separated, or 'all'")
		scale      = flag.Float64("scale", defaults.Scale, "TPC-H micro scale factor (lineitem = 60000*scale rows)")
		graphNV    = flag.Int("graph-nv", defaults.GraphNV, "graph vertex count")
		words      = flag.Int("words", defaults.Words, "MapReduce corpus size in tokens")
		seed       = flag.Int64("seed", defaults.Seed, "generator seed")
		cacheFrac  = flag.Float64("cache-frac", defaults.CacheFrac, "compute-local cache as a fraction of the working set")
		parallel   = flag.Int("parallel", 0, "concurrent figure data points on the host: 0 = one per core (GOMAXPROCS), 1 = sequential, n = n workers")
		simWorkers = flag.Int("sim-workers", 0, "host goroutines draining simulation domains of the multi-machine cluster benchmark: 0 = one per core, 1 = sequential; virtual results are bit-identical at any setting")
		shards     = flag.Int("pool-shards", 0, "memory-pool shard count for disaggregated platforms (0/1 = single controller)")
		replicas   = flag.Int("replicas", 0, "synchronous page replicas across shards (0/1 = unreplicated)")
		writeQ     = flag.Int("write-quorum", 0, "replica acks a page write needs to commit; unreachable replicas get hinted handoff (0/1 = legacy fan-out)")
		list       = flag.Bool("list", false, "list figure ids and exit")

		benchOut  = flag.String("bench-out", "", "run the whole suite timed and write the host benchmark report (wall-clock + allocs per figure) to this file")
		baseline  = flag.String("bench-baseline", "", "compare the report against this tracked baseline and fail on regression")
		tolerance = flag.Float64("bench-tolerance", 0.25, "allowed wall-clock regression vs the baseline (0.25 = 25%)")
		quiet     = flag.Bool("quiet", false, "suppress the figure tables (useful with -bench-out)")

		workload    = flag.String("workload", "", "forensic mode: run this single workload (one of "+strings.Join(bench.WorkloadNames(), ", ")+") instead of figures")
		platform    = flag.String("platform", "teleport", "forensic mode platform: one of "+strings.Join(bench.PlatformNames(), ", "))
		chaosProf   = flag.String("chaos-profile", "", "forensic mode fault-injection profile (see internal/fault)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "forensic mode fault plan seed (0 = reuse -seed)")
		profileOut  = flag.String("profile-out", "", "forensic mode: write the virtual-time profile as folded stacks to this file")
		percentiles = flag.Bool("percentiles", false, "forensic mode: print per-operation latency percentiles")
		exactQuant  = flag.Int("exact-quantiles", 0, "forensic mode: retain up to N raw samples per histogram for exact quantiles")
		incidentOut = flag.String("incident-out", "", "forensic mode: write flight-recorder incident records as JSONL to this file")
		incidentN   = flag.Int("incident-events", 0, "forensic mode: trace-window size per incident (0 with -incident-out = default "+fmt.Sprint(obs.DefaultIncidentEvents)+")")
		reportOut   = flag.String("report-out", "", "forensic mode: write the unified run report as JSON to this file")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Figures(), " "))
		return
	}
	opts := bench.Options{
		Scale:       *scale,
		GraphNV:     *graphNV,
		Words:       *words,
		Seed:        *seed,
		CacheFrac:   *cacheFrac,
		Parallel:    *parallel,
		SimWorkers:  *simWorkers,
		PoolShards:  *shards,
		Replicas:    *replicas,
		WriteQuorum: *writeQ,
	}
	if *workload != "" {
		if err := forensicRun(*workload, *platform, opts, forensicFlags{
			chaosProfile: *chaosProf, chaosSeed: *chaosSeed,
			profileOut: *profileOut, percentiles: *percentiles,
			exactQuantiles: *exactQuant,
			incidentOut:    *incidentOut, incidentEvents: *incidentN,
			reportOut: *reportOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if !*quiet {
		fmt.Printf("# teleport-bench scale=%g graph-nv=%d words=%d seed=%d cache-frac=%g\n\n",
			opts.Scale, opts.GraphNV, opts.Words, opts.Seed, opts.CacheFrac)
	}

	if *benchOut != "" {
		tables, rep := bench.RunAllTimed(opts)
		if !*quiet {
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
		}
		f, err := os.Create(*benchOut)
		if err == nil {
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: suite took %.2fs wall (%d workers, gomaxprocs %d), %d mallocs; wrote %s\n",
			float64(rep.TotalWallNs)/1e9, rep.Workers, rep.GoMaxProcs, rep.TotalMallocs, *benchOut)
		if cl := rep.Cluster; cl != nil {
			fmt.Fprintf(os.Stderr, "bench: cluster %d machines × %d rounds: %.2fs at 1 sim worker, %.2fs at %d (%.2fx, identical virtual results)\n",
				cl.Machines, cl.Rounds, float64(cl.SeqWallNs)/1e9, float64(cl.ParWallNs)/1e9, cl.SimWorkers, cl.Speedup)
		}
		if *baseline != "" {
			base, err := bench.ReadHostReport(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench-baseline:", err)
				os.Exit(1)
			}
			if err := rep.CompareBaseline(base, *tolerance); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "bench: within %.0f%% of baseline %s (%.2fs)\n",
				*tolerance*100, *baseline, float64(base.TotalWallNs)/1e9)
		}
		return
	}

	if *fig == "all" {
		for _, t := range bench.RunAll(opts) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*fig, ",") {
		t, err := bench.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
	}
}

// forensicFlags carries the single-workload observability knobs.
type forensicFlags struct {
	chaosProfile   string
	chaosSeed      int64
	profileOut     string
	percentiles    bool
	exactQuantiles int
	incidentOut    string
	incidentEvents int
	reportOut      string
}

// forensicRun is the figure harness's drill-down mode: instead of
// regenerating tables it executes one workload with the profiler, the
// percentile extractor, and the flight recorder armed, prints the unified
// report, and writes whichever artifacts were asked for. The knobs are all
// passive, so the virtual times match the figure runs exactly.
func forensicRun(workload, platform string, opts bench.Options, ff forensicFlags) error {
	incidentEvents := ff.incidentEvents
	if incidentEvents == 0 && ff.incidentOut != "" {
		incidentEvents = obs.DefaultIncidentEvents
	}
	opts.ChaosProfile = ff.chaosProfile
	opts.ChaosSeed = ff.chaosSeed
	opts.Profiling = ff.profileOut != "" || ff.reportOut != ""
	opts.Percentiles = ff.percentiles || ff.reportOut != ""
	opts.ExactQuantiles = ff.exactQuantiles
	opts.IncidentEvents = incidentEvents
	res, err := bench.RunWorkload(workload, platform, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: %.6f s (virtual)\n\n", res.Workload, res.Platform, res.Seconds)
	bench.NewRunReport(res).Fprint(os.Stdout)
	if ff.profileOut != "" {
		if err := writeFile(ff.profileOut, res.SpanProfile.WriteFolded); err != nil {
			return fmt.Errorf("profile-out: %w", err)
		}
		fmt.Printf("wrote %d span paths to %s\n", len(res.SpanProfile.Paths), ff.profileOut)
	}
	if ff.incidentOut != "" {
		err := writeFile(ff.incidentOut, func(w io.Writer) error {
			return obs.WriteIncidentsJSONL(w, res.Incidents)
		})
		if err != nil {
			return fmt.Errorf("incident-out: %w", err)
		}
		fmt.Printf("wrote %d incident records to %s (%d triggered)\n",
			len(res.Incidents), ff.incidentOut, res.IncidentsTotal)
	}
	if ff.reportOut != "" {
		if err := writeFile(ff.reportOut, bench.NewRunReport(res).WriteJSON); err != nil {
			return fmt.Errorf("report-out: %w", err)
		}
		fmt.Printf("wrote unified run report to %s\n", ff.reportOut)
	}
	return nil
}

// writeFile creates path and streams write into it, closing on either path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
