// Command teleport-bench regenerates the paper's evaluation figures and
// tables (Figures 1a–22) on the simulated disaggregated data center.
//
// Usage:
//
//	teleport-bench                      # regenerate every figure
//	teleport-bench -fig 13              # one figure
//	teleport-bench -fig 6,7,20          # several
//	teleport-bench -scale 4 -seed 7     # bigger workloads
//	teleport-bench -parallel 1          # force sequential data points
//	teleport-bench -bench-out BENCH_5.json             # host benchmark report
//	teleport-bench -bench-out b.json -bench-baseline BENCH_5.json
//
// Output is the same rows/series the paper reports; absolute values reflect
// the scaled-down datasets (see DESIGN.md's scale rule and EXPERIMENTS.md
// for the committed paper-vs-measured record). Figure data points fan out
// across host cores by default; the virtual-time results are bit-identical
// at every -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teleport/internal/bench"
)

func main() {
	defaults := bench.Defaults()
	var (
		fig       = flag.String("fig", "all", "figure id(s), comma separated, or 'all'")
		scale     = flag.Float64("scale", defaults.Scale, "TPC-H micro scale factor (lineitem = 60000*scale rows)")
		graphNV   = flag.Int("graph-nv", defaults.GraphNV, "graph vertex count")
		words     = flag.Int("words", defaults.Words, "MapReduce corpus size in tokens")
		seed      = flag.Int64("seed", defaults.Seed, "generator seed")
		cacheFrac = flag.Float64("cache-frac", defaults.CacheFrac, "compute-local cache as a fraction of the working set")
		parallel  = flag.Int("parallel", 0, "concurrent figure data points on the host: 0 = one per core (GOMAXPROCS), 1 = sequential, n = n workers")
		shards    = flag.Int("pool-shards", 0, "memory-pool shard count for disaggregated platforms (0/1 = single controller)")
		replicas  = flag.Int("replicas", 0, "synchronous page replicas across shards (0/1 = unreplicated)")
		list      = flag.Bool("list", false, "list figure ids and exit")

		benchOut  = flag.String("bench-out", "", "run the whole suite timed and write the host benchmark report (wall-clock + allocs per figure) to this file")
		baseline  = flag.String("bench-baseline", "", "compare the report against this tracked baseline and fail on regression")
		tolerance = flag.Float64("bench-tolerance", 0.25, "allowed wall-clock regression vs the baseline (0.25 = 25%)")
		quiet     = flag.Bool("quiet", false, "suppress the figure tables (useful with -bench-out)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Figures(), " "))
		return
	}
	opts := bench.Options{
		Scale:      *scale,
		GraphNV:    *graphNV,
		Words:      *words,
		Seed:       *seed,
		CacheFrac:  *cacheFrac,
		Parallel:   *parallel,
		PoolShards: *shards,
		Replicas:   *replicas,
	}
	if !*quiet {
		fmt.Printf("# teleport-bench scale=%g graph-nv=%d words=%d seed=%d cache-frac=%g\n\n",
			opts.Scale, opts.GraphNV, opts.Words, opts.Seed, opts.CacheFrac)
	}

	if *benchOut != "" {
		tables, rep := bench.RunAllTimed(opts)
		if !*quiet {
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
		}
		f, err := os.Create(*benchOut)
		if err == nil {
			err = rep.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-out:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: suite took %.2fs wall (%d workers, gomaxprocs %d), %d mallocs; wrote %s\n",
			float64(rep.TotalWallNs)/1e9, rep.Workers, rep.GoMaxProcs, rep.TotalMallocs, *benchOut)
		if *baseline != "" {
			base, err := bench.ReadHostReport(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench-baseline:", err)
				os.Exit(1)
			}
			if err := rep.CompareBaseline(base, *tolerance); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "bench: within %.0f%% of baseline %s (%.2fs)\n",
				*tolerance*100, *baseline, float64(base.TotalWallNs)/1e9)
		}
		return
	}

	if *fig == "all" {
		for _, t := range bench.RunAll(opts) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*fig, ",") {
		t, err := bench.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
	}
}
