// Command teleport-bench regenerates the paper's evaluation figures and
// tables (Figures 1a–22) on the simulated disaggregated data center.
//
// Usage:
//
//	teleport-bench                      # regenerate every figure
//	teleport-bench -fig 13              # one figure
//	teleport-bench -fig 6,7,20          # several
//	teleport-bench -scale 4 -seed 7     # bigger workloads
//
// Output is the same rows/series the paper reports; absolute values reflect
// the scaled-down datasets (see DESIGN.md's scale rule and EXPERIMENTS.md
// for the committed paper-vs-measured record).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teleport/internal/bench"
)

func main() {
	defaults := bench.Defaults()
	var (
		fig       = flag.String("fig", "all", "figure id(s), comma separated, or 'all'")
		scale     = flag.Float64("scale", defaults.Scale, "TPC-H micro scale factor (lineitem = 60000*scale rows)")
		graphNV   = flag.Int("graph-nv", defaults.GraphNV, "graph vertex count")
		words     = flag.Int("words", defaults.Words, "MapReduce corpus size in tokens")
		seed      = flag.Int64("seed", defaults.Seed, "generator seed")
		cacheFrac = flag.Float64("cache-frac", defaults.CacheFrac, "compute-local cache as a fraction of the working set")
		list      = flag.Bool("list", false, "list figure ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.Figures(), " "))
		return
	}
	opts := bench.Options{
		Scale:     *scale,
		GraphNV:   *graphNV,
		Words:     *words,
		Seed:      *seed,
		CacheFrac: *cacheFrac,
	}
	fmt.Printf("# teleport-bench scale=%g graph-nv=%d words=%d seed=%d cache-frac=%g\n\n",
		opts.Scale, opts.GraphNV, opts.Words, opts.Seed, opts.CacheFrac)

	if *fig == "all" {
		for _, t := range bench.RunAll(opts) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*fig, ",") {
		t, err := bench.Run(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
	}
}
