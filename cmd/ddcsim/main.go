// Command ddcsim runs one of the paper's eight workloads on a chosen
// platform and prints the per-operator profile — handy for exploring how a
// workload's operators behave as the platform changes.
//
// Usage:
//
//	ddcsim -workload Q9 -platform base-ddc
//	ddcsim -workload SSSP -platform teleport -scale 4
//	ddcsim -workload Q6 -platform teleport -report
//	ddcsim -workload Q6 -platform teleport -trace-out q6.json -metrics-out q6-metrics.json
//	ddcsim -workload Q9,Q3,Q6 -platform teleport -parallel 4
//	ddcsim -chaos-profile list
//	ddcsim -workload Q6 -platform teleport -pool-shards 4 -replicas 2 -chaos-profile shard-flap
//	ddcsim -workload Q6 -platform teleport -profile-out q6.folded -percentiles
//	ddcsim -workload Q6 -platform teleport -chaos-profile stress -incident-out q6-incidents.jsonl -report-out q6-report.json
//
// A comma-separated -workload list runs the workloads concurrently across
// host cores (bounded by -parallel); results print in list order and are
// bit-identical to sequential runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"teleport/internal/bench"
	"teleport/internal/fault"
	"teleport/internal/obs"
	"teleport/internal/sim"
	"teleport/internal/trace"
)

func main() {
	defaults := bench.Defaults()
	var (
		workload   = flag.String("workload", "Q6", "comma-separated list from "+strings.Join(bench.WorkloadNames(), ", "))
		parallel   = flag.Int("parallel", 0, "concurrent workloads on the host: 0 = one per core (GOMAXPROCS), 1 = sequential, n = n workers")
		cluster    = flag.Int("cluster", 0, "run the multi-machine cluster workload on this many machines instead of -workload (0 = off)")
		clRounds   = flag.Int("cluster-rounds", 4, "cluster workload BSP supersteps")
		simWorkers = flag.Int("sim-workers", 0, "host goroutines draining simulation domains inside one lookahead window: 0 = one per core (GOMAXPROCS), 1 = sequential; virtual results are bit-identical at any setting")
		platform   = flag.String("platform", "base-ddc", "one of "+strings.Join(bench.PlatformNames(), ", "))
		scale      = flag.Float64("scale", defaults.Scale, "TPC-H micro scale factor")
		graphNV    = flag.Int("graph-nv", defaults.GraphNV, "graph vertex count")
		words      = flag.Int("words", defaults.Words, "corpus tokens")
		seed       = flag.Int64("seed", defaults.Seed, "generator seed")
		cacheFrac  = flag.Float64("cache-frac", defaults.CacheFrac, "compute cache fraction")
		traceN     = flag.Int("trace", 0, "dump the last N paging/coherence/pushdown events")
		traceOut   = flag.String("trace-out", "", "write the retained events as Chrome trace-event JSON (Perfetto-loadable) to this file")
		traceDump  = flag.String("trace-dump", "", "write the retained events as text, one per line, to this file")
		metricsOut = flag.String("metrics-out", "", "write the metrics registry snapshot as JSON to this file")
		report     = flag.Bool("report", false, "print the per-run time-attribution report")
		advise     = flag.Bool("advise", false, "profile on the base DDC and print the advisor's pushdown decisions")
		chaosProf  = flag.String("chaos-profile", "", "fault-injection profile: none, "+strings.Join(fault.ProfileNames(), ", ")+"; 'list' prints all profiles with parameters")
		chaosSeed  = flag.Int64("chaos-seed", 0, "fault plan seed (0 = reuse -seed)")
		poolShards = flag.Int("pool-shards", 0, "memory-pool shard count (0/1 = single controller)")
		replicas   = flag.Int("replicas", 0, "synchronous page replicas across shards (0/1 = unreplicated)")
		writeQ     = flag.Int("write-quorum", 0, "replica acks a page write needs to commit; unreachable replicas get hinted handoff (0/1 = legacy fan-out)")
		queueCap   = flag.Int("push-queue-cap", 0, "memory-pool workqueue capacity; beyond it requests are shed (0 = unbounded)")
		deadlineUs = flag.Float64("push-deadline-us", 0, "per-attempt pushdown deadline budget in virtual microseconds (0 = none)")
		brThresh   = flag.Int("breaker-threshold", 0, "circuit-breaker consecutive-failure threshold (0 = default, negative = disabled)")
		brCoolUs   = flag.Float64("breaker-cooldown-us", 0, "circuit-breaker open cooldown in virtual microseconds (0 = default)")

		profileOut  = flag.String("profile-out", "", "write the virtual-time profile as folded stacks (flamegraph.pl/speedscope input) to this file")
		percentiles = flag.Bool("percentiles", false, "print per-operation latency percentiles (p50/p95/p99/p999)")
		exactQuant  = flag.Int("exact-quantiles", 0, "retain up to N raw samples per histogram so small operation classes report exact quantiles (0 = bucket interpolation only)")
		incidentOut = flag.String("incident-out", "", "write flight-recorder incident records as JSONL to this file")
		incidentN   = flag.Int("incident-events", 0, "trace-window size per incident (0 with -incident-out = default "+fmt.Sprint(obs.DefaultIncidentEvents)+")")
		reportOut   = flag.String("report-out", "", "write the unified run report (attribution + percentiles + hot paths + incidents) as JSON to this file")
	)
	flag.Parse()

	if *chaosProf == "list" {
		for _, p := range fault.Profiles() {
			fmt.Printf("%-12s %s\n%-12s   %s\n", p.Name, p.Description, "", p.Params())
		}
		return
	}
	traceCap := *traceN
	if traceCap == 0 && (*traceOut != "" || *traceDump != "") {
		// Trace export asked for without an explicit ring size: retain a
		// generous window.
		traceCap = 1 << 18
	}
	incidentEvents := *incidentN
	if incidentEvents == 0 && *incidentOut != "" {
		incidentEvents = obs.DefaultIncidentEvents
	}
	opts := bench.Options{
		Scale: *scale, GraphNV: *graphNV, Words: *words,
		Seed: *seed, CacheFrac: *cacheFrac, TraceCap: traceCap,
		Metrics:        *metricsOut != "",
		Profiling:      *profileOut != "" || *reportOut != "",
		Percentiles:    *percentiles || *reportOut != "",
		ExactQuantiles: *exactQuant,
		IncidentEvents: incidentEvents,
		ChaosProfile:   *chaosProf, ChaosSeed: *chaosSeed,
		PoolShards: *poolShards, Replicas: *replicas, WriteQuorum: *writeQ,
		PushQueueCap:     *queueCap,
		PushDeadline:     sim.FromNs(*deadlineUs * 1e3),
		BreakerThreshold: *brThresh,
		BreakerCooldown:  sim.FromNs(*brCoolUs * 1e3),
		Parallel:         *parallel,
		SimWorkers:       *simWorkers,
	}
	if *cluster > 0 {
		// Cluster mode prints only deterministic bytes on stdout: CI runs
		// it at -sim-workers 1 and 8 and compares the outputs verbatim.
		res, err := bench.RunCluster(opts, *cluster, *clRounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res.Fprint(os.Stdout)
		return
	}
	names := strings.Split(*workload, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if len(names) > 1 {
		if *advise || traceCap > 0 || *metricsOut != "" ||
			*profileOut != "" || *incidentOut != "" || *reportOut != "" {
			fmt.Fprintln(os.Stderr, "ddcsim: -advise/-trace*/-metrics-out/-profile-out/-incident-out/-report-out need a single -workload")
			os.Exit(1)
		}
		results, err := bench.RunWorkloads(names, *platform, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i, res := range results {
			if i > 0 {
				fmt.Println()
			}
			printResult(res, *report)
		}
		return
	}
	if *advise {
		decisions, err := bench.Advise(*workload, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("advisor decisions for %s (profiled on the base DDC):\n", *workload)
		for _, dec := range decisions {
			fmt.Println(" ", dec)
		}
		return
	}
	res, err := bench.RunWorkload(names[0], *platform, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(res, *report)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = trace.WriteChromeTrace(f, res.Trace)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d trace events to %s (load at ui.perfetto.dev)\n", len(res.Trace), *traceOut)
	}
	if *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err == nil {
			for _, e := range res.Trace {
				fmt.Fprintln(f, e)
			}
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace-dump:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", len(res.Trace), *traceDump)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = res.Metrics.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *profileOut != "" {
		err := writeFile(*profileOut, res.SpanProfile.WriteFolded)
		if err != nil {
			fmt.Fprintln(os.Stderr, "profile-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d span paths to %s (feed to flamegraph.pl --countname=ns)\n",
			len(res.SpanProfile.Paths), *profileOut)
	}
	if *incidentOut != "" {
		err := writeFile(*incidentOut, func(w io.Writer) error {
			return obs.WriteIncidentsJSONL(w, res.Incidents)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "incident-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d incident records to %s (%d triggered)\n",
			len(res.Incidents), *incidentOut, res.IncidentsTotal)
	}
	if *reportOut != "" {
		err := writeFile(*reportOut, bench.NewRunReport(res).WriteJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote unified run report to %s\n", *reportOut)
	}
	if *traceN > 0 && len(res.Trace) > 0 {
		fmt.Printf("\nlast %d events:\n", len(res.Trace))
		for _, e := range res.Trace {
			fmt.Println(" ", e)
		}
	}
}

// printResult renders one workload execution: the virtual-time summary, the
// per-operator profile, and (optionally) the attribution report plus
// whatever observability sections the run collected (percentiles, hot span
// paths, incident summary, chaos report).
func printResult(res bench.WorkloadResult, report bool) {
	fmt.Printf("%s on %s: %.6f s (virtual)\n\n", res.Workload, res.Platform, res.Seconds)
	fmt.Printf("  %-14s %12s %10s %12s %8s\n", "operator", "time(s)", "calls", "remote(KB)", "pushed")
	for _, o := range res.Profile {
		fmt.Printf("  %-14s %12.6f %10d %12.1f %8v\n",
			o.Name, o.Time.Seconds(), o.Calls, float64(o.RemoteByte)/1024, o.Pushed)
	}
	fmt.Println()
	rr := bench.NewRunReport(res)
	if !report {
		rr.Attribution = nil
	}
	rr.Fprint(os.Stdout)
}

// writeFile creates path and streams write into it, closing on either path.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
