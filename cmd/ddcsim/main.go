// Command ddcsim runs one of the paper's eight workloads on a chosen
// platform and prints the per-operator profile — handy for exploring how a
// workload's operators behave as the platform changes.
//
// Usage:
//
//	ddcsim -workload Q9 -platform base-ddc
//	ddcsim -workload SSSP -platform teleport -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teleport/internal/bench"
	"teleport/internal/fault"
)

func main() {
	defaults := bench.Defaults()
	var (
		workload  = flag.String("workload", "Q6", "one of "+strings.Join(bench.WorkloadNames(), ", "))
		platform  = flag.String("platform", "base-ddc", "one of "+strings.Join(bench.PlatformNames(), ", "))
		scale     = flag.Float64("scale", defaults.Scale, "TPC-H micro scale factor")
		graphNV   = flag.Int("graph-nv", defaults.GraphNV, "graph vertex count")
		words     = flag.Int("words", defaults.Words, "corpus tokens")
		seed      = flag.Int64("seed", defaults.Seed, "generator seed")
		cacheFrac = flag.Float64("cache-frac", defaults.CacheFrac, "compute cache fraction")
		traceN    = flag.Int("trace", 0, "dump the last N paging/coherence/pushdown events")
		advise    = flag.Bool("advise", false, "profile on the base DDC and print the advisor's pushdown decisions")
		chaosProf = flag.String("chaos-profile", "", "fault-injection profile: none, "+strings.Join(fault.ProfileNames(), ", "))
		chaosSeed = flag.Int64("chaos-seed", 0, "fault plan seed (0 = reuse -seed)")
	)
	flag.Parse()

	opts := bench.Options{
		Scale: *scale, GraphNV: *graphNV, Words: *words,
		Seed: *seed, CacheFrac: *cacheFrac, TraceCap: *traceN,
		ChaosProfile: *chaosProf, ChaosSeed: *chaosSeed,
	}
	if *advise {
		decisions, err := bench.Advise(*workload, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("advisor decisions for %s (profiled on the base DDC):\n", *workload)
		for _, dec := range decisions {
			fmt.Println(" ", dec)
		}
		return
	}
	res, err := bench.RunWorkload(*workload, *platform, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s on %s: %.6f s (virtual)\n\n", res.Workload, res.Platform, res.Seconds)
	fmt.Printf("  %-14s %12s %10s %12s %8s\n", "operator", "time(s)", "calls", "remote(KB)", "pushed")
	for _, o := range res.Profile {
		fmt.Printf("  %-14s %12.6f %10d %12.1f %8v\n",
			o.Name, o.Time.Seconds(), o.Calls, float64(o.RemoteByte)/1024, o.Pushed)
	}
	if res.Fault != nil {
		fmt.Printf("\n%s\n", res.Fault)
	}
	if len(res.Trace) > 0 {
		fmt.Printf("\nlast %d events:\n", len(res.Trace))
		for _, e := range res.Trace {
			fmt.Println(" ", e)
		}
	}
}
