// ddclint is the repository's determinism linter: a multichecker that
// statically enforces the simulator's reproducibility invariants —
//
//	walltime      no wall-clock time outside the virtual-clock packages
//	seededrand    no unseeded/global randomness in internal packages
//	maporder      no observable output driven by random map iteration
//	nilsafeobs    observability methods are nil-safe by construction
//	virtualclock  time arithmetic stays in the clock's type
//	errcmp        no ==/!= on error values — wrapped sentinels need errors.Is
//	spanbalance   every trace Begin is Ended exactly once on every exit path
//	timecharge    hardware models charge virtual time on every non-error path
//	confine       simulator state never crosses goroutine/channel boundaries
//	maporder+     (interprocedural) iteration values emitted one call hop away
//
// Usage:
//
//	go run ./cmd/ddclint [-list] [packages ...]
//
// Packages default to ./... resolved from the module root. Diagnostics
// print as path:line:col: message (analyzer), sorted by position across
// all packages, and the exit status is 1 if any survive the //lint:allow
// escape hatch (see internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"teleport/internal/analysis"
	"teleport/internal/analysis/confine"
	"teleport/internal/analysis/errcmp"
	"teleport/internal/analysis/load"
	"teleport/internal/analysis/maporder"
	"teleport/internal/analysis/nilsafeobs"
	"teleport/internal/analysis/seededrand"
	"teleport/internal/analysis/spanbalance"
	"teleport/internal/analysis/timecharge"
	"teleport/internal/analysis/virtualclock"
	"teleport/internal/analysis/walltime"
)

// analyzers is the full determinism suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	walltime.Analyzer,
	seededrand.Analyzer,
	maporder.Analyzer,
	nilsafeobs.Analyzer,
	virtualclock.Analyzer,
	errcmp.Analyzer,
	spanbalance.Analyzer,
	timecharge.Analyzer,
	confine.Analyzer,
}

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ddclint [-list] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	n, err := run(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddclint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ddclint: %d issue(s)\n", n)
		os.Exit(1)
	}
}

// run lints the given package patterns and returns the diagnostic count.
// Diagnostics are collected across all packages and printed in one
// position-sorted stream so the output is stable under package-order and
// parallelism changes — the CLI contract the golden test pins.
func run(patterns []string) (int, error) {
	wd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, err := load.ModuleRoot(wd)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	sess := load.NewSession(root)
	pkgs, err := sess.Module(patterns...)
	if err != nil {
		return 0, err
	}

	// The registered suite, for allow-rot detection: an allow naming an
	// analyzer outside this set can never suppress anything again.
	known := map[string]bool{"lintallow": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		checked := make(map[string]bool)
		for _, a := range analyzers {
			if a.DefaultFilter != nil && !a.DefaultFilter(pkg.Path) {
				continue
			}
			checked[a.Name] = true
			ds, err := analysis.Run(a, sess.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return 0, err
			}
			diags = append(diags, ds...)
		}
		allows := analysis.CollectAllows(sess.Fset, pkg.Files)
		all = append(all, analysis.FilterAllowed(sess.Fset, diags, allows, checked, known)...)
	}
	analysis.SortDiagnostics(sess.Fset, all)
	for _, d := range all {
		pos := sess.Fset.Position(d.Pos)
		rel, err := filepath.Rel(root, pos.Filename)
		if err != nil {
			rel = pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer.Name)
	}
	return len(all), nil
}
