package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildLinter compiles the ddclint binary once into a temp dir.
func buildLinter(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ddclint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building ddclint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module for the linter to chew on.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLinter executes the binary in dir and returns stdout and exit code.
func runLinter(t *testing.T, bin, dir string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running ddclint: %v\n%s", err, stderr.String())
		}
		code = ee.ExitCode()
	}
	if code == 2 {
		t.Fatalf("ddclint internal error:\n%s", stderr.String())
	}
	return stdout.String(), code
}

func TestCLICleanTreeExitsZero(t *testing.T) {
	bin := buildLinter(t)
	dir := writeModule(t, map[string]string{
		"main.go": `package main

import "fmt"

func main() {
	fmt.Println("deterministic")
}
`,
	})
	out, code := runLinter(t, bin, dir)
	if code != 0 {
		t.Fatalf("exit code = %d on a clean tree, want 0\noutput:\n%s", code, out)
	}
	if out != "" {
		t.Fatalf("clean tree must print nothing, got:\n%s", out)
	}
}

// diagLine pins the diagnostic format: path:line:col: message (analyzer).
var diagLine = regexp.MustCompile(`^([^:]+):(\d+):(\d+): .+ \((\w+)\)$`)

func TestCLIFindingsExitOneSorted(t *testing.T) {
	bin := buildLinter(t)
	dir := writeModule(t, map[string]string{
		// a.go carries a maporder violation (line 9) and a walltime
		// violation (line 14); b.go a rotted allow (line 4). The output
		// must be position-sorted across files, not package-visit order.
		"a.go": `package main

import (
	"fmt"
	"time"
)

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

var t0 = time.Now()
`,
		"b.go": `package main

func stale() {
	x := 1 //lint:allow nosuchcheck this analyzer does not exist
	_ = x
}

func main() {}
`,
	})
	out, code := runLinter(t, bin, dir)
	if code != 1 {
		t.Fatalf("exit code = %d with findings, want 1\noutput:\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(lines), out)
	}
	// The stable contract: format, file/line anchors, analyzer names, and
	// global position order.
	want := []struct {
		prefix   string
		analyzer string
	}{
		{"a.go:9:", "maporder"},
		{"a.go:14:", "walltime"},
		{"b.go:4:", "lintallow"},
	}
	for i, line := range lines {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d does not match the diagnostic format: %q", i, line)
			continue
		}
		if !strings.HasPrefix(line, want[i].prefix) {
			t.Errorf("line %d = %q, want prefix %q (position-sorted output)", i, line, want[i].prefix)
		}
		if m[4] != want[i].analyzer {
			t.Errorf("line %d analyzer = %s, want %s", i, m[4], want[i].analyzer)
		}
	}
}
