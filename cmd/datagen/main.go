// Command datagen generates the synthetic datasets (the TPC-H-style
// database, the power-law graph, the Zipf text corpus) and prints their
// shapes — useful for sizing experiments before running them.
package main

import (
	"flag"
	"fmt"
	"os"

	"teleport/internal/coldb"
	"teleport/internal/ddc"
	"teleport/internal/graph"
	"teleport/internal/mapreduce"
	"teleport/internal/tpch"
)

func main() {
	var (
		kind  = flag.String("kind", "tpch", "tpch | graph | corpus")
		scale = flag.Float64("scale", 2, "TPC-H micro scale factor")
		nv    = flag.Int("nv", 60000, "graph vertices")
		deg   = flag.Int("deg", 6, "graph average degree")
		words = flag.Int("words", 250000, "corpus tokens")
		vocab = flag.Int("vocab", 4000, "corpus vocabulary")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	m := ddc.MustMachine(ddc.Linux())
	p := m.NewProcess()
	switch *kind {
	case "tpch":
		d := tpch.Load(coldb.NewDB(p), tpch.Config{Scale: *scale, Seed: *seed})
		fmt.Printf("TPC-H micro scale %g:\n", *scale)
		fmt.Printf("  lineitem %d, orders %d, customer %d, part %d, supplier %d, partsupp %d\n",
			d.L, d.O, d.C, d.P, d.S, d.PS)
		fmt.Printf("  database bytes: %d (%.1f MB), pages: %d\n",
			d.DB.Bytes(), float64(d.DB.Bytes())/(1<<20), p.Space.Pages())
		for _, name := range d.DB.Tables() {
			t := d.DB.Table(name)
			fmt.Printf("  table %-10s rows=%-8d cols=%v\n", name, t.N, t.Columns())
		}
	case "graph":
		g, _ := graph.Generate(p, graph.GenConfig{NV: *nv, AvgDegree: *deg, Seed: *seed})
		fmt.Printf("graph: %d vertices, %d edges, %.1f MB CSR, %d pages allocated\n",
			g.NV, g.NE, float64(g.Bytes())/(1<<20), p.Space.Pages())
	case "corpus":
		c, _ := mapreduce.GenerateCorpus(p, mapreduce.CorpusConfig{
			Words: *words, Vocab: *vocab, Seed: *seed,
		})
		fmt.Printf("corpus: %d bytes (%.1f MB), %d lines, vocab %d\n",
			c.Len, float64(c.Len)/(1<<20), c.Lines, c.Vocab)
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q (tpch | graph | corpus)\n", *kind)
		os.Exit(1)
	}
}
