module teleport

go 1.22
