// Package teleport is a from-scratch reproduction of "Optimizing
// Data-intensive Systems in Disaggregated Data Centers with TELEPORT"
// (SIGMOD 2022): an OS-level compute-pushdown primitive for
// memory-disaggregated data centers, together with the disaggregated-OS
// substrate it runs on and the three data-intensive systems the paper
// optimises (a columnar DBMS, a gather-apply-scatter graph engine, and a
// shared-memory MapReduce).
//
// This root package is the facade: it re-exports the simulator's core types
// and provides the platform constructors. The typical flow is
//
//	m := teleport.NewDDCMachine(1 << 30)            // compute cache bound
//	p := m.NewProcess()                             // space lives in the memory pool
//	rt := teleport.NewRuntime(p, 1)                 // the TELEPORT instance pair
//	th := teleport.NewThread("worker")
//	stats, err := rt.Pushdown(th, func(env *teleport.Env) {
//	    // runs in the memory pool, next to the data
//	}, teleport.Options{})
//
// Everything is deterministic: time is virtual (see internal/sim), so runs
// are bit-for-bit reproducible. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package teleport

import (
	"teleport/internal/core"
	"teleport/internal/ddc"
	"teleport/internal/hw"
	"teleport/internal/mem"
	"teleport/internal/sim"
)

// Re-exported core types. These are aliases, so values flow freely between
// the facade and the internal packages.
type (
	// Machine is one (possibly disaggregated) machine.
	Machine = ddc.Machine
	// MachineConfig selects and parameterises a platform.
	MachineConfig = ddc.Config
	// HWConfig is the hardware cost model.
	HWConfig = hw.Config
	// Process is a user process whose address space lives in the memory pool.
	Process = ddc.Process
	// Env is a simulated thread's execution environment; all data access
	// goes through it.
	Env = ddc.Env
	// Runtime is the TELEPORT instance pair of one process.
	Runtime = core.Runtime
	// Options configures one pushdown call.
	Options = core.Options
	// Stats is the per-call breakdown (Figure 19's components).
	Stats = core.Stats
	// Flags select coherence/synchronisation behaviour.
	Flags = core.Flags
	// Range is an address range for SyncMem / eviction hints.
	Range = core.Range
	// Thread is a simulated thread with a virtual clock.
	Thread = sim.Thread
	// Scheduler interleaves simulated threads in virtual-time order.
	Scheduler = sim.Scheduler
	// Time is virtual nanoseconds.
	Time = sim.Time
	// Addr is a virtual address in a process's space.
	Addr = mem.Addr
)

// Re-exported pushdown flags (§3.1's flags parameter and §4.2's
// relaxations).
const (
	FlagDefault        = core.FlagDefault
	FlagPSO            = core.FlagPSO
	FlagNoCoherence    = core.FlagNoCoherence
	FlagEagerSync      = core.FlagEagerSync
	FlagMigrateProcess = core.FlagMigrateProcess
	FlagEvictRanges    = core.FlagEvictRanges
)

// Re-exported errors.
var (
	ErrCancelled        = core.ErrCancelled
	ErrKilled           = core.ErrKilled
	ErrMemoryPoolDown   = core.ErrMemoryPoolDown
	ErrNotDisaggregated = core.ErrNotDisaggregated
)

// PageSize is the simulator's page size (4 KB).
const PageSize = mem.PageSize

// NewLocalMachine returns a monolithic server with unlimited DRAM (the
// paper's local-execution reference).
func NewLocalMachine() *Machine {
	return ddc.MustMachine(ddc.Linux())
}

// NewLinuxSSDMachine returns a monolithic server whose DRAM is capped at
// localMemBytes, swapping to a modelled NVMe SSD.
func NewLinuxSSDMachine(localMemBytes int64) *Machine {
	return ddc.MustMachine(ddc.LinuxSSD(localMemBytes))
}

// NewDDCMachine returns a disaggregated machine (LegoOS-style base DDC)
// whose compute-local cache is bounded to cacheBytes.
func NewDDCMachine(cacheBytes int64) *Machine {
	return ddc.MustMachine(ddc.BaseDDC(cacheBytes))
}

// NewMachine builds a machine from an explicit configuration.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	return ddc.NewMachine(cfg)
}

// Testbed returns the paper's hardware parameters (§7).
func Testbed() HWConfig { return hw.Testbed() }

// NewRuntime returns a TELEPORT runtime for p with the given number of
// memory-pool user contexts (§3.2).
func NewRuntime(p *Process, contexts int) *Runtime {
	return core.NewRuntime(p, contexts)
}

// NewThread returns a standalone simulated thread.
func NewThread(name string) *Thread { return sim.NewThread(name) }

// NewScheduler returns a virtual-time scheduler for multi-threaded
// simulations.
func NewScheduler() *Scheduler { return sim.NewScheduler() }
